//! Fault-injection proof for the robust sweep substrate (ISSUE 7 tentpole):
//! under deterministically injected candidate panics, fuel exhaustion,
//! artificial delays, transient failures, and cache corruption, sweeps must
//!
//! * still complete and return a report,
//! * record every faulted candidate with its outcome class
//!   (`Panicked` / `TimedOut` / `Failed`), and
//! * pick the same winner as the fault-free sweep whenever the winner itself
//!   was not faulted.
//!
//! Injection decisions are pure functions of `(plan seed, kind, app,
//! candidate label)`, so everything in here is deterministic — no flaky
//! probabilistic assertions. The fault plan is process-global, so every
//! sweep below runs inside a `fault::install` scope (a zero-rate plan is a
//! behavioral no-op); scopes serialize on an internal lock, which keeps
//! concurrently running tests from seeing each other's plans.

use dpcons_apps::{datasets, Benchmark, Profile, RunConfig, Sssp};
use dpcons_core::{BufferKind, Granularity, KnobSpace};
use dpcons_sim::GpuConfig;
use dpcons_tune::fault::{self, FaultPlan};
use dpcons_tune::{
    fleet_sweep, tune, Budget, Cache, FleetOptions, FleetReport, FleetStatus, Status, TuneOptions,
    TuneReport,
};

fn sssp() -> Sssp {
    Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0)
}

fn tiny_space() -> KnobSpace {
    KnobSpace {
        granularities: Granularity::ALL.to_vec(),
        buffers: vec![BufferKind::Custom, BufferKind::Halloc],
        per_buffer_sizes: vec![None],
        configs: vec![None, Some((13, 64))],
    }
}

fn opts() -> TuneOptions {
    TuneOptions {
        base: RunConfig::default(),
        space: tiny_space(),
        // Unbounded budget: every candidate is visited, so winner identity
        // cannot shift through early-stopping interactions with faults.
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    }
}

/// A plan that injects nothing — used to wrap fault-free sweeps in the same
/// serialization scope as faulted ones.
fn no_faults() -> FaultPlan {
    FaultPlan::new(0)
}

fn tune_with(plan: FaultPlan, app: &Sssp, o: &TuneOptions) -> TuneReport {
    let _scope = fault::install(plan);
    tune(app, o).expect("the sweep must complete, faults or not")
}

fn fleet_with(plan: FaultPlan, app: &Sssp, o: &FleetOptions) -> FleetReport {
    let _scope = fault::install(plan);
    fleet_sweep(app, o).expect("the fleet sweep must complete, faults or not")
}

/// Labels of candidates that actually ran in a fault-free sweep (pruned ones
/// never reach the injection hooks).
fn evaluated_labels(report: &TuneReport) -> Vec<String> {
    report
        .candidates
        .iter()
        .filter(|c| matches!(c.status, Status::Evaluated(_)))
        .map(|c| c.knobs.label())
        .collect()
}

/// Find a plan seed where the fault-free winner is NOT faulted but at least
/// one other evaluated candidate is — the interesting case for the
/// winner-stability property. Pure search over pure functions: stable.
fn seed_sparing_the_winner(plan: &FaultPlan, app: &str, winner: &str, labels: &[String]) -> u64 {
    (0..1000)
        .find(|&seed| {
            let p = FaultPlan { seed, ..*plan };
            !fault::outcome_faulted(&p, app, winner)
                && labels.iter().any(|l| fault::outcome_faulted(&p, app, l))
        })
        .expect("some seed in 0..1000 faults a non-winner candidate")
}

#[test]
fn injected_panics_are_isolated_recorded_and_spare_the_winner() {
    let app = sssp();
    let o = opts();
    let clean = tune_with(no_faults(), &app, &o);
    let winner = clean.best_knobs().expect("fault-free sweep has a winner").label();
    let labels = evaluated_labels(&clean);

    let base_plan = FaultPlan { panic_rate: 0.4, ..FaultPlan::new(0) };
    let seed = seed_sparing_the_winner(&base_plan, app.name(), &winner, &labels);
    let faulted = tune_with(FaultPlan { seed, ..base_plan }, &app, &o);

    assert!(faulted.panicked > 0, "the chosen seed injects at least one panic");
    let panic_rows =
        faulted.candidates.iter().filter(|c| matches!(c.status, Status::Panicked(_))).count();
    assert_eq!(faulted.panicked, panic_rows, "the count matches the rows");
    for (_, c) in faulted.faulted() {
        match &c.status {
            Status::Panicked(msg) => {
                assert!(msg.contains("injected candidate panic"), "payload preserved: {msg}")
            }
            other => panic!("panic-only plan produced a non-panic fault: {other:?}"),
        }
    }
    // Winner stability: the winner was not faulted, so it must be the same.
    assert_eq!(faulted.best_knobs().expect("winner survives").label(), winner);
    assert_eq!(faulted.best_cycles(), clean.best_cycles());
}

#[test]
fn injected_fuel_exhaustion_times_candidates_out_deterministically() {
    let app = sssp();
    let o = opts();
    let clean = tune_with(no_faults(), &app, &o);
    let winner = clean.best_knobs().expect("winner").label();
    let labels = evaluated_labels(&clean);

    let base_plan = FaultPlan { fuel_rate: 0.4, ..FaultPlan::new(0) };
    let seed = seed_sparing_the_winner(&base_plan, app.name(), &winner, &labels);
    let faulted = tune_with(FaultPlan { seed, ..base_plan }, &app, &o);

    assert!(faulted.timed_out > 0, "forced tiny fuel budgets must exhaust");
    for (_, c) in faulted.faulted() {
        match &c.status {
            Status::TimedOut(msg) => {
                assert!(msg.contains("fuel exhausted"), "outcome names the fuel budget: {msg}")
            }
            other => panic!("fuel-only plan produced a non-timeout fault: {other:?}"),
        }
    }
    assert_eq!(faulted.best_knobs().expect("winner survives").label(), winner);

    // Same plan, same decisions: the faulted report replays byte-identically.
    let again = tune_with(FaultPlan { seed, ..base_plan }, &app, &o);
    assert_eq!(again.to_text(), faulted.to_text());
}

#[test]
fn transient_failures_are_retried_away() {
    let app = sssp();
    let o = opts();
    let clean = tune_with(no_faults(), &app, &o);

    let retries = dpcons_obs::counter("tune.candidate.retries");
    let before = retries.get();
    let faulted = tune_with(FaultPlan { transient_rate: 1.0, ..FaultPlan::new(5) }, &app, &o);
    // Every evaluation failed once and succeeded on the bounded retry: the
    // final report is indistinguishable from the fault-free one.
    assert_eq!(faulted, clean);
    assert!(retries.get() > before, "the retry path must actually run");
}

#[test]
fn soft_deadline_times_out_delayed_candidates() {
    let app = sssp();
    let mut o = opts();
    o.budget.max_candidate_ms = Some(5);
    let plan = FaultPlan { delay_rate: 1.0, delay_ms: 20, ..FaultPlan::new(6) };
    let faulted = tune_with(plan, &app, &o);
    assert!(faulted.timed_out > 0, "a 20ms injected delay must blow a 5ms deadline");
    assert!(faulted
        .faulted()
        .all(|(_, c)| matches!(&c.status, Status::TimedOut(m) if m.contains("soft deadline"))));
}

#[test]
fn corrupted_cache_writes_are_quarantined_and_recomputed() {
    let app = sssp();
    let dir = std::env::temp_dir().join(format!("dpcons-faultcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = opts();
    // Distinct cache key from every other test in this binary (the key hashes
    // the run config), so concurrent tests cannot cross-serve entries.
    o.base.threshold += 7;
    o.cache = Some(Cache::new(Some(dir.clone())));

    let corrupt_counter = dpcons_obs::counter("tune.cache.corrupt");
    let quarantine_counter = dpcons_obs::counter("tune.cache.quarantined");
    let (corrupt0, quarantine0) = (corrupt_counter.get(), quarantine_counter.get());

    // Sweep with every cache write corrupted on disk.
    let fresh = tune_with(FaultPlan { cache_corrupt_rate: 1.0, ..FaultPlan::new(7) }, &app, &o);
    assert!(!fresh.from_cache);

    // Cold read (fresh process simulated): the corrupt file must be detected,
    // quarantined to *.corrupt, treated as a miss, and the sweep recomputed
    // to the identical report.
    Cache::clear_memory();
    let recomputed = tune_with(no_faults(), &app, &o);
    assert!(!recomputed.from_cache, "corrupt entry must read as a miss");
    assert_eq!(recomputed.to_text(), fresh.to_text());
    assert!(corrupt_counter.get() > corrupt0, "corruption must be counted");
    assert!(quarantine_counter.get() > quarantine0, "quarantine must be counted");
    let quarantined: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
        .collect();
    assert!(!quarantined.is_empty(), "the bad file is kept for post-mortem");

    // The healthy rewrite now hits from disk.
    Cache::clear_memory();
    assert!(tune_with(no_faults(), &app, &o).from_cache);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_fault_campaign_meets_the_acceptance_bar() {
    // The ISSUE's acceptance scenario: panics + fuel exhaustion + transient
    // errors + corrupted cache files injected into >= 10% of candidates; the
    // sweep completes, reports every faulted candidate with its outcome
    // class, and preserves the winner when the winner was spared.
    let app = sssp();
    let dir = std::env::temp_dir().join(format!("dpcons-mixedfault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = opts();
    o.base.threshold += 13; // distinct cache key (see above)
    let clean = tune_with(no_faults(), &app, &o);
    let winner = clean.best_knobs().expect("winner").label();
    let labels = evaluated_labels(&clean);

    let base_plan = FaultPlan {
        panic_rate: 0.25,
        fuel_rate: 0.25,
        transient_rate: 0.2,
        cache_corrupt_rate: 1.0,
        ..FaultPlan::new(0)
    };
    let seed = seed_sparing_the_winner(&base_plan, app.name(), &winner, &labels);
    let plan = FaultPlan { seed, ..base_plan };

    let evaluated_n = labels.len();
    let injected = labels.iter().filter(|l| fault::outcome_faulted(&plan, app.name(), l)).count();
    assert!(
        injected * 10 >= evaluated_n,
        "campaign must fault >= 10% of evaluated candidates ({injected}/{evaluated_n})"
    );

    o.cache = Some(Cache::new(Some(dir.clone())));
    let faulted = tune_with(plan, &app, &o);
    assert!(!faulted.from_cache);
    assert_eq!(faulted.fault_count(), faulted.panicked + faulted.timed_out + faulted.failed);
    assert!(faulted.panicked + faulted.timed_out > 0, "outcome-changing faults landed");
    for (_, c) in faulted.faulted() {
        assert!(
            matches!(c.status, Status::Panicked(_) | Status::TimedOut(_) | Status::Failed(_)),
            "every fault row carries its outcome class"
        );
    }
    assert_eq!(faulted.best_knobs().expect("winner survives").label(), winner);

    // The faulted report's cache write was itself corrupted: a cold re-run
    // under the same plan quarantines it, recomputes, and converges on the
    // identical faulted report — self-healing plus determinism in one step.
    Cache::clear_memory();
    let replay = tune_with(plan, &app, &o);
    assert!(!replay.from_cache, "corrupted faulted entry must miss");
    assert_eq!(replay.to_text(), faulted.to_text());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_sweep_survives_faults_and_keeps_unfaulted_winners() {
    let app = sssp();
    let fo = FleetOptions {
        base: RunConfig::default(),
        space: tiny_space(),
        budget: Budget::default(),
        fleet: vec![GpuConfig::k20c(), GpuConfig::k40()],
        cache: None,
    };
    let clean = fleet_with(no_faults(), &app, &fo);
    let winners: Vec<Option<String>> =
        (0..clean.devices.len()).map(|d| clean.winner_knobs(d).map(|k| k.label())).collect();
    let labels: Vec<String> = clean
        .candidates
        .iter()
        .filter(|c| matches!(c.status, FleetStatus::Retimed(_)))
        .map(|c| c.knobs.label())
        .collect();

    let base_plan = FaultPlan { panic_rate: 0.3, fuel_rate: 0.2, ..FaultPlan::new(0) };
    let seed = (0..1000)
        .find(|&s| {
            let p = FaultPlan { seed: s, ..base_plan };
            winners.iter().flatten().all(|w| !fault::outcome_faulted(&p, app.name(), w))
                && labels.iter().any(|l| fault::outcome_faulted(&p, app.name(), l))
        })
        .expect("some seed spares every per-device winner while faulting another candidate");
    let faulted = fleet_with(FaultPlan { seed, ..base_plan }, &app, &fo);

    assert!(faulted.fault_count() > 0, "the chosen seed faults at least one candidate");
    for (_, c) in faulted.faulted() {
        assert!(matches!(
            c.status,
            FleetStatus::Panicked(_) | FleetStatus::TimedOut(_) | FleetStatus::Failed(_)
        ));
    }
    for (d, w) in winners.iter().enumerate() {
        assert_eq!(
            faulted.winner_knobs(d).map(|k| k.label()),
            *w,
            "device {d} winner must be stable when unfaulted"
        );
    }
}
