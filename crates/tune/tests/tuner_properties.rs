//! Property-style tests for the autotuner (ISSUE 1 satellite):
//!
//! * **determinism** — same inputs produce byte-identical `TuneReport`s,
//!   including under a budget (early stopping is machine-independent);
//! * **cache-hit equivalence** — a cached result equals a fresh search,
//!   through both the in-memory and the on-disk layer;
//! * **pruning soundness** — no pruned candidate would have been feasible:
//!   force-evaluating every pruned point fails.

use dpcons_apps::{datasets, Benchmark, Profile, RunConfig, Sssp, TreeDescendants};
use dpcons_core::{consolidate, BufferKind, Granularity, KnobSpace};
use dpcons_sim::{AllocKind, GpuConfig};
use dpcons_tune::{
    default_knobs, enumerate_candidates, evaluate_candidate, fleet_sweep, prune_reason, tune,
    Budget, Cache, FleetOptions, Knobs, Status, TuneOptions,
};

fn sssp() -> Sssp {
    Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0)
}

fn tiny_space() -> KnobSpace {
    KnobSpace {
        granularities: Granularity::ALL.to_vec(),
        buffers: vec![BufferKind::Custom, BufferKind::Halloc],
        per_buffer_sizes: vec![None],
        configs: vec![None, Some((13, 64))],
    }
}

fn opts(space: KnobSpace) -> TuneOptions {
    TuneOptions {
        base: RunConfig::default(),
        space,
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    }
}

#[test]
fn same_inputs_produce_identical_reports() {
    let app = sssp();
    let o = opts(tiny_space());
    let a = tune(&app, &o).unwrap();
    let b = tune(&app, &o).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_text(), b.to_text(), "serialized forms are byte-identical");
    assert!(a.best.is_some());
    assert!(!a.from_cache && !b.from_cache);
}

#[test]
fn budgeted_search_is_deterministic_and_never_worse_than_defaults() {
    let app = sssp();
    let mut o = opts(KnobSpace::quick(13));
    o.budget = Budget { max_evals: Some(6), patience: Some(1), ..Budget::default() };
    let a = tune(&app, &o).unwrap();
    let b = tune(&app, &o).unwrap();
    assert_eq!(a, b);
    assert!(a.skipped > 0, "the budget should leave part of the quick space unvisited");
    // The paper defaults are always evaluated, so best <= every default.
    let model = app.tune_model().unwrap();
    let best = a.best_cycles().expect("budgeted sweep still finds a winner");
    for g in Granularity::ALL {
        let d = a
            .cycles_for(&default_knobs(&model, g))
            .unwrap_or_else(|| panic!("{}-level default not evaluated", g.label()));
        assert!(best <= d, "best {best} worse than {}-level default {d}", g.label());
    }
}

#[test]
fn cache_hit_equals_fresh_search_across_both_layers() {
    let app = sssp();
    let dir = std::env::temp_dir().join(format!("dpcons-tune-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = opts(tiny_space());
    o.cache = Some(Cache::new(Some(dir.clone())));

    let fresh = tune(&app, &o).unwrap();
    assert!(!fresh.from_cache);

    // Memory-layer hit.
    let warm = tune(&app, &o).unwrap();
    assert!(warm.from_cache);
    assert_eq!(warm, fresh);

    // Disk-layer hit (simulates a second process).
    Cache::clear_memory();
    let cold = tune(&app, &o).unwrap();
    assert!(cold.from_cache);
    assert_eq!(cold, fresh);
    assert_eq!(cold.to_text(), fresh.to_text());

    // A different dataset must miss: same options, different graph.
    Cache::clear_memory();
    let other = Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xBEEF), 0);
    let miss = tune(&other, &o).unwrap();
    assert!(!miss.from_cache);
    assert_ne!(miss.fingerprint, fresh.fingerprint);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pruned_candidates_are_never_feasible() {
    // A space salted with statically-infeasible points: an oversized block
    // configuration and a per-buffer size beyond the device heap.
    let app = sssp();
    let base = RunConfig { heap_words: 1 << 16, ..RunConfig::default() };
    let space = KnobSpace {
        granularities: Granularity::ALL.to_vec(),
        buffers: vec![BufferKind::Custom],
        per_buffer_sizes: vec![None, Some(1 << 20)],
        configs: vec![None, Some((13, 2048))],
    };
    let o = TuneOptions {
        base: base.clone(),
        space,
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    };
    let report = tune(&app, &o).unwrap();
    assert!(report.pruned > 0, "the salted space must trigger pruning");
    assert!(report.best.is_some(), "feasible points remain");

    let expected = app.reference();
    for c in &report.candidates {
        if let Status::Pruned(reason) = &c.status {
            let st = evaluate_candidate(&app, &base, &c.knobs, &expected);
            assert!(
                matches!(st, Status::Failed(_)),
                "pruned candidate {} (reason: {reason}) evaluated to {st:?} — prune is unsound",
                c.knobs.label()
            );
        }
    }
}

#[test]
fn analysis_prune_matches_the_compiler_rejection() {
    // Warp-level consolidation of a parent that device-synchronizes is
    // rejected by `analyze`; the pruner must report it and `consolidate`
    // (what evaluation would run) must fail identically. Built synthetically
    // since none of the seven apps' parents use cudaDeviceSynchronize.
    use dpcons_apps::TuneModel;
    use dpcons_core::Directive;
    use dpcons_ir::dsl::*;
    use dpcons_ir::Module;

    fn module() -> Module {
        let mut m = Module::new();
        m.add(KernelBuilder::new("child").array("d").scalar("w").body(vec![for_step(
            "j",
            tid(),
            load(v("d"), v("w")),
            ntid(),
            vec![compute(i(1))],
        )]));
        m.add(KernelBuilder::new("parent").array("d").scalar("n").body(vec![
            let_("u", gtid()),
            when(lt(v("u"), v("n")), vec![launch("child", i(1), i(64), vec![v("d"), v("u")])]),
            dpcons_ir::Stmt::DeviceSync,
        ]));
        m
    }
    fn directive(g: Granularity) -> Directive {
        Directive::new(g, &["u"])
    }
    let model = TuneModel { module_dp: module(), parent: "parent", directive };
    let cfg = RunConfig::default();
    let warp = Knobs {
        granularity: Granularity::Warp,
        alloc: AllocKind::PreAlloc,
        per_buffer_size: None,
        config: None,
    };
    let reason = prune_reason(&model, &cfg, &warp).expect("warp x device-sync must be pruned");
    assert!(reason.contains("analysis"), "unexpected reason: {reason}");
    let dir = directive(Granularity::Warp);
    assert!(
        consolidate(&model.module_dp, "parent", &dir, &cfg.gpu, None).is_err(),
        "the compiler must reject exactly what the pruner pruned"
    );
    // Grid level is fine for the same kernel.
    let grid = Knobs { granularity: Granularity::Grid, ..warp };
    assert!(prune_reason(&model, &cfg, &grid).is_none());
}

#[test]
fn fleet_cache_key_covers_every_dimension_including_device() {
    // Property sweep over the fleet cache: the exact same (app fingerprint,
    // run config, knob space, budget, fleet) hits through both layers;
    // perturbing any single dimension — in particular the new *device*
    // dimension — misses.
    let app = sssp();
    let dir = std::env::temp_dir().join(format!("dpcons-fleet-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base_opts = FleetOptions {
        base: RunConfig::default(),
        space: tiny_space(),
        budget: Budget::default(),
        fleet: vec![GpuConfig::k20c(), GpuConfig::k40()],
        cache: Some(Cache::new(Some(dir.clone()))),
    };

    let fresh = fleet_sweep(&app, &base_opts).unwrap();
    assert!(!fresh.from_cache);
    assert_eq!(fresh.devices, vec!["K20c-like", "K40-like"]);

    // Same key: memory-layer hit, then (fresh process simulated) disk hit.
    let warm = fleet_sweep(&app, &base_opts).unwrap();
    assert!(warm.from_cache, "identical sweep must hit the memory layer");
    assert_eq!(warm, fresh);
    Cache::clear_memory();
    let cold = fleet_sweep(&app, &base_opts).unwrap();
    assert!(cold.from_cache, "identical sweep must hit the disk layer");
    assert_eq!(cold, fresh);
    assert_eq!(cold.to_text(), fresh.to_text());

    // Device dimension: growing the fleet misses...
    let mut grown = base_opts.clone();
    grown.fleet.push(GpuConfig::titan());
    let grown = fleet_sweep(&app, &grown).unwrap();
    assert!(!grown.from_cache, "adding a device must be a new key");
    // ...and so does swapping one device for another of the same count.
    let mut swapped = base_opts.clone();
    swapped.fleet[1] = GpuConfig::titan();
    assert!(!fleet_sweep(&app, &swapped).unwrap().from_cache, "swapping a device must miss");
    // Even a purely structural edit to one device (same name) must miss:
    // the key hashes the full description, not the display name.
    let mut edited = base_opts.clone();
    edited.fleet[1].max_concurrent_kernels = 2;
    assert!(!fleet_sweep(&app, &edited).unwrap().from_cache, "editing a device must miss");

    // Non-device dimensions still miss as before.
    let mut thr = base_opts.clone();
    thr.base.threshold += 1;
    assert!(!fleet_sweep(&app, &thr).unwrap().from_cache, "run config must be keyed");
    let mut budget = base_opts.clone();
    budget.budget = Budget { max_evals: Some(3), patience: None, ..Budget::default() };
    assert!(!fleet_sweep(&app, &budget).unwrap().from_cache, "budget must be keyed");
    let other = Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xBEEF), 0);
    let other_report = fleet_sweep(&other, &base_opts).unwrap();
    assert!(!other_report.from_cache, "dataset fingerprint must be keyed");
    assert_ne!(other_report.fingerprint, fresh.fingerprint);

    // And after all those misses, the original key still hits.
    assert!(fleet_sweep(&app, &base_opts).unwrap().from_cache);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_rejects_empty_and_incompatible_fleets() {
    use dpcons_tune::FleetError;
    let app = sssp();
    let mut opts = FleetOptions {
        base: RunConfig::default(),
        space: tiny_space(),
        budget: Budget::default(),
        fleet: Vec::new(),
        cache: None,
    };
    assert_eq!(fleet_sweep(&app, &opts).unwrap_err(), FleetError::EmptyFleet);

    let mut alien = GpuConfig::k40();
    alien.costs.swap_cycles += 1;
    opts.fleet = vec![GpuConfig::k20c(), alien];
    match fleet_sweep(&app, &opts).unwrap_err() {
        FleetError::IncompatibleDevice { device, .. } => assert_eq!(device, "K40-like"),
        other => panic!("expected IncompatibleDevice, got {other:?}"),
    }
}

#[test]
fn grid_level_duplicates_are_collapsed() {
    let app = TreeDescendants::new(datasets::tree2(Profile::Test));
    let model = app.tune_model().unwrap();
    let space = KnobSpace {
        granularities: vec![Granularity::Grid],
        buffers: vec![BufferKind::Custom, BufferKind::Halloc, BufferKind::Default],
        per_buffer_sizes: vec![None, Some(64), Some(256)],
        configs: vec![None, Some((13, 128))],
    };
    let (cands, collapsed) = enumerate_candidates(&model, &space);
    // 3 buffers x 3 sizes x 2 configs = 18 points, but only the config knob
    // reaches grid-level codegen: 2 distinct candidates survive.
    assert_eq!(cands.len(), 2);
    assert_eq!(collapsed, 16);
    for k in &cands {
        assert_eq!(k.alloc, AllocKind::PreAlloc);
    }
}
