//! Property-style tests for the autotuner (ISSUE 1 satellite):
//!
//! * **determinism** — same inputs produce byte-identical `TuneReport`s,
//!   including under a budget (early stopping is machine-independent);
//! * **cache-hit equivalence** — a cached result equals a fresh search,
//!   through both the in-memory and the on-disk layer;
//! * **pruning soundness** — no pruned candidate would have been feasible:
//!   force-evaluating every pruned point fails.

use dpcons_apps::{datasets, Benchmark, Profile, RunConfig, Sssp, TreeDescendants};
use dpcons_core::{consolidate, BufferKind, Granularity, KnobSpace};
use dpcons_sim::AllocKind;
use dpcons_tune::{
    default_knobs, enumerate_candidates, evaluate_candidate, prune_reason, tune, Budget, Cache,
    Knobs, Status, TuneOptions,
};

fn sssp() -> Sssp {
    Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0)
}

fn tiny_space() -> KnobSpace {
    KnobSpace {
        granularities: Granularity::ALL.to_vec(),
        buffers: vec![BufferKind::Custom, BufferKind::Halloc],
        per_buffer_sizes: vec![None],
        configs: vec![None, Some((13, 64))],
    }
}

fn opts(space: KnobSpace) -> TuneOptions {
    TuneOptions {
        base: RunConfig::default(),
        space,
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    }
}

#[test]
fn same_inputs_produce_identical_reports() {
    let app = sssp();
    let o = opts(tiny_space());
    let a = tune(&app, &o).unwrap();
    let b = tune(&app, &o).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_text(), b.to_text(), "serialized forms are byte-identical");
    assert!(a.best.is_some());
    assert!(!a.from_cache && !b.from_cache);
}

#[test]
fn budgeted_search_is_deterministic_and_never_worse_than_defaults() {
    let app = sssp();
    let mut o = opts(KnobSpace::quick(13));
    o.budget = Budget { max_evals: Some(6), patience: Some(1) };
    let a = tune(&app, &o).unwrap();
    let b = tune(&app, &o).unwrap();
    assert_eq!(a, b);
    assert!(a.skipped > 0, "the budget should leave part of the quick space unvisited");
    // The paper defaults are always evaluated, so best <= every default.
    let model = app.tune_model().unwrap();
    let best = a.best_cycles().expect("budgeted sweep still finds a winner");
    for g in Granularity::ALL {
        let d = a
            .cycles_for(&default_knobs(&model, g))
            .unwrap_or_else(|| panic!("{}-level default not evaluated", g.label()));
        assert!(best <= d, "best {best} worse than {}-level default {d}", g.label());
    }
}

#[test]
fn cache_hit_equals_fresh_search_across_both_layers() {
    let app = sssp();
    let dir = std::env::temp_dir().join(format!("dpcons-tune-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = opts(tiny_space());
    o.cache = Some(Cache::new(Some(dir.clone())));

    let fresh = tune(&app, &o).unwrap();
    assert!(!fresh.from_cache);

    // Memory-layer hit.
    let warm = tune(&app, &o).unwrap();
    assert!(warm.from_cache);
    assert_eq!(warm, fresh);

    // Disk-layer hit (simulates a second process).
    Cache::clear_memory();
    let cold = tune(&app, &o).unwrap();
    assert!(cold.from_cache);
    assert_eq!(cold, fresh);
    assert_eq!(cold.to_text(), fresh.to_text());

    // A different dataset must miss: same options, different graph.
    Cache::clear_memory();
    let other = Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xBEEF), 0);
    let miss = tune(&other, &o).unwrap();
    assert!(!miss.from_cache);
    assert_ne!(miss.fingerprint, fresh.fingerprint);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pruned_candidates_are_never_feasible() {
    // A space salted with statically-infeasible points: an oversized block
    // configuration and a per-buffer size beyond the device heap.
    let app = sssp();
    let base = RunConfig { heap_words: 1 << 16, ..RunConfig::default() };
    let space = KnobSpace {
        granularities: Granularity::ALL.to_vec(),
        buffers: vec![BufferKind::Custom],
        per_buffer_sizes: vec![None, Some(1 << 20)],
        configs: vec![None, Some((13, 2048))],
    };
    let o = TuneOptions {
        base: base.clone(),
        space,
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    };
    let report = tune(&app, &o).unwrap();
    assert!(report.pruned > 0, "the salted space must trigger pruning");
    assert!(report.best.is_some(), "feasible points remain");

    let expected = app.reference();
    for c in &report.candidates {
        if let Status::Pruned(reason) = &c.status {
            let st = evaluate_candidate(&app, &base, &c.knobs, &expected);
            assert!(
                matches!(st, Status::Failed(_)),
                "pruned candidate {} (reason: {reason}) evaluated to {st:?} — prune is unsound",
                c.knobs.label()
            );
        }
    }
}

#[test]
fn analysis_prune_matches_the_compiler_rejection() {
    // Warp-level consolidation of a parent that device-synchronizes is
    // rejected by `analyze`; the pruner must report it and `consolidate`
    // (what evaluation would run) must fail identically. Built synthetically
    // since none of the seven apps' parents use cudaDeviceSynchronize.
    use dpcons_apps::TuneModel;
    use dpcons_core::Directive;
    use dpcons_ir::dsl::*;
    use dpcons_ir::Module;

    fn module() -> Module {
        let mut m = Module::new();
        m.add(KernelBuilder::new("child").array("d").scalar("w").body(vec![for_step(
            "j",
            tid(),
            load(v("d"), v("w")),
            ntid(),
            vec![compute(i(1))],
        )]));
        m.add(KernelBuilder::new("parent").array("d").scalar("n").body(vec![
            let_("u", gtid()),
            when(lt(v("u"), v("n")), vec![launch("child", i(1), i(64), vec![v("d"), v("u")])]),
            dpcons_ir::Stmt::DeviceSync,
        ]));
        m
    }
    fn directive(g: Granularity) -> Directive {
        Directive::new(g, &["u"])
    }
    let model = TuneModel { module_dp: module(), parent: "parent", directive };
    let cfg = RunConfig::default();
    let warp = Knobs {
        granularity: Granularity::Warp,
        alloc: AllocKind::PreAlloc,
        per_buffer_size: None,
        config: None,
    };
    let reason = prune_reason(&model, &cfg, &warp).expect("warp x device-sync must be pruned");
    assert!(reason.contains("analysis"), "unexpected reason: {reason}");
    let dir = directive(Granularity::Warp);
    assert!(
        consolidate(&model.module_dp, "parent", &dir, &cfg.gpu, None).is_err(),
        "the compiler must reject exactly what the pruner pruned"
    );
    // Grid level is fine for the same kernel.
    let grid = Knobs { granularity: Granularity::Grid, ..warp };
    assert!(prune_reason(&model, &cfg, &grid).is_none());
}

#[test]
fn grid_level_duplicates_are_collapsed() {
    let app = TreeDescendants::new(datasets::tree2(Profile::Test));
    let model = app.tune_model().unwrap();
    let space = KnobSpace {
        granularities: vec![Granularity::Grid],
        buffers: vec![BufferKind::Custom, BufferKind::Halloc, BufferKind::Default],
        per_buffer_sizes: vec![None, Some(64), Some(256)],
        configs: vec![None, Some((13, 128))],
    };
    let (cands, collapsed) = enumerate_candidates(&model, &space);
    // 3 buffers x 3 sizes x 2 configs = 18 points, but only the config knob
    // reaches grid-level codegen: 2 distinct candidates survive.
    assert_eq!(cands.len(), 2);
    assert_eq!(collapsed, 16);
    for k in &cands {
        assert_eq!(k.alloc, AllocKind::PreAlloc);
    }
}
