//! Degraded-environment coverage (ISSUE 7 satellite): broken filesystems and
//! malformed inputs must downgrade gracefully — memory-only caching, typed
//! errors — never panic or abort a sweep.

use dpcons_apps::{datasets, Profile, RunConfig, Sssp};
use dpcons_core::{BufferKind, Granularity, KnobSpace};
use dpcons_sim::{parse_fleet, FleetSpecError, GpuConfig};
use dpcons_tune::{
    fleet_sweep, tune, Budget, Cache, FleetError, FleetOptions, TuneError, TuneOptions,
};

fn sssp() -> Sssp {
    Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0)
}

fn tiny_space() -> KnobSpace {
    KnobSpace {
        granularities: Granularity::ALL.to_vec(),
        buffers: vec![BufferKind::Custom, BufferKind::Halloc],
        per_buffer_sizes: vec![None],
        configs: vec![None, Some((13, 64))],
    }
}

fn opts() -> TuneOptions {
    TuneOptions {
        base: RunConfig::default(),
        space: tiny_space(),
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    }
}

#[test]
fn unwritable_cache_dir_degrades_to_memory_only_with_one_warning() {
    // A regular *file* used as the cache directory: `create_dir_all` fails on
    // every platform, regardless of privileges (chmod tricks don't bite when
    // tests run as root).
    let blocker = std::env::temp_dir().join(format!("dpcons-notadir-{}", std::process::id()));
    std::fs::write(&blocker, "occupies the path").expect("blocker file");

    let cache = Cache::new(Some(blocker.clone()));
    assert!(!cache.disk_disabled());
    cache.put_text(0xDEAD, "payload");
    assert!(cache.disk_disabled(), "a failed write must flip the handle to memory-only");
    // The memory layer still works.
    assert_eq!(cache.get_text(0xDEAD).as_deref(), Some("payload"));
    // Further writes stay memory-only and don't error.
    cache.put_text(0xBEEF, "more");
    assert_eq!(cache.get_text(0xBEEF).as_deref(), Some("more"));

    // The degradation warning was already emitted (warn_once returns false
    // for a key that has fired; its at-most-once contract is tested in obs).
    let key = format!("tune.cache.disk-disabled:{}", blocker.display());
    assert!(
        !dpcons_obs::warn_once(&key, "probe"),
        "the cache must have emitted its single degradation warning"
    );

    // A clone shares the degraded state — no second warning storm.
    assert!(cache.clone().disk_disabled());
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn truncated_cache_file_is_a_miss_and_quarantined() {
    let app = sssp();
    let dir = std::env::temp_dir().join(format!("dpcons-truncated-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = opts();
    o.base.threshold += 21; // unique cache key within this test binary
    o.cache = Some(Cache::new(Some(dir.clone())));

    let fresh = tune(&app, &o).expect("sweep");
    assert!(!fresh.from_cache);
    let entry = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "tune"))
        .expect("the sweep wrote one cache file");

    // Chop the file mid-payload: the envelope length no longer matches.
    let full = std::fs::read_to_string(&entry).expect("read entry");
    std::fs::write(&entry, &full[..full.len() / 2]).expect("truncate");

    Cache::clear_memory();
    let recomputed = tune(&app, &o).expect("sweep after truncation");
    assert!(!recomputed.from_cache, "truncated entry must be a miss, not a parse panic");
    assert_eq!(recomputed.to_text(), fresh.to_text());
    let mut corrupt = entry.clone().into_os_string();
    corrupt.push(".corrupt");
    assert!(
        std::path::Path::new(&corrupt).exists(),
        "the truncated file is quarantined for post-mortem"
    );
    assert_eq!(
        std::fs::read_to_string(&corrupt).expect("quarantined bytes"),
        full[..full.len() / 2],
        "quarantine preserves the bad bytes verbatim"
    );
    // The recompute rewrote a healthy entry in place; it serves cold now.
    Cache::clear_memory();
    assert!(tune(&app, &o).expect("warm sweep").from_cache);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_budget_sweeps_return_typed_errors_not_panics() {
    let app = sssp();
    let mut o = opts();
    o.budget.max_evals = Some(0);
    assert!(matches!(tune(&app, &o).unwrap_err(), TuneError::InvalidBudget { .. }));

    let fo = FleetOptions {
        base: RunConfig::default(),
        space: tiny_space(),
        budget: Budget { max_evals: Some(0), ..Budget::default() },
        fleet: vec![GpuConfig::k20c()],
        cache: None,
    };
    assert!(matches!(
        fleet_sweep(&app, &fo).unwrap_err(),
        FleetError::Tune(TuneError::InvalidBudget { .. })
    ));
}

#[test]
fn unknown_fleet_device_is_a_typed_error() {
    match parse_fleet("k20c,atlantis9000") {
        Err(FleetSpecError::Unknown { name }) => assert_eq!(name, "atlantis9000"),
        other => panic!("expected Unknown device error, got {other:?}"),
    }
}

#[test]
fn empty_fleet_is_a_typed_error() {
    let app = sssp();
    let fo = FleetOptions {
        base: RunConfig::default(),
        space: tiny_space(),
        budget: Budget::default(),
        fleet: Vec::new(),
        cache: None,
    };
    assert_eq!(fleet_sweep(&app, &fo).unwrap_err(), FleetError::EmptyFleet);
}
