//! Observability contract of the tuner: disabled tracing records **zero**
//! spans, enabled tracing covers the sweep and every wave, and a warm
//! second sweep is visible as cache hits in the metrics registry.
//!
//! This is deliberately the only test in this integration-test binary — the
//! span rings, the tracing flag, and the metrics registry are process-wide,
//! and a lone test owns its whole process, so nothing but these sweeps can
//! perturb what it observes.

use std::path::PathBuf;

use dpcons_apps::{datasets, Profile, RunConfig, Sssp};
use dpcons_tune::{tune, Budget, Cache, TuneOptions};

fn opts(cache: Option<PathBuf>) -> TuneOptions {
    let cache = cache.map(|dir| Cache::new(Some(dir)));
    TuneOptions {
        base: RunConfig::default(),
        space: dpcons_core::KnobSpace::quick(RunConfig::default().gpu.num_sms),
        budget: Budget { max_evals: Some(6), patience: Some(1), ..Budget::default() },
        with_baselines: false,
        cache,
    }
}

#[test]
fn tracing_and_cache_metrics_across_cold_and_warm_sweeps() {
    let app = Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0);
    let dir = std::env::temp_dir().join(format!("dpcons-obs-itest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Tracing disabled (the default): a full sweep records no spans at all.
    assert!(!dpcons_obs::tracing_enabled());
    let cold = tune(&app, &opts(Some(dir.clone()))).expect("cold sweep");
    assert!(cold.evaluated > 0);
    assert!(dpcons_obs::take_spans().is_empty(), "disabled tracing must record zero spans");

    // The cold sweep missed the cache and then wrote its report.
    let misses = dpcons_obs::counter("tune.cache.misses").get();
    let writes = dpcons_obs::counter("tune.cache.writes").get();
    assert!(misses >= 1, "cold sweep must miss the empty cache");
    assert!(writes >= 1, "cold sweep must write its report to the cache");
    let hits_before = dpcons_obs::counter("tune.cache.hits").get();

    // 2. Tracing enabled: the identical sweep is a warm cache hit, and the
    // spans cover the sweep itself. (A cache hit skips the waves, so wave
    // spans are asserted on a cache-less sweep below.)
    dpcons_obs::set_tracing(true);
    let warm = tune(&app, &opts(Some(dir.clone()))).expect("warm sweep");
    let hits = dpcons_obs::counter("tune.cache.hits").get();
    assert!(hits > hits_before, "warm identical sweep must hit the cache");
    assert_eq!(warm.to_text(), cold.to_text(), "cache hit reproduces the report byte-exactly");

    let uncached = tune(&app, &opts(None)).expect("uncached sweep");
    assert!(uncached.evaluated > 0);
    dpcons_obs::set_tracing(false);

    let spans = dpcons_obs::take_spans();
    assert!(!spans.is_empty());
    let sweeps = spans.iter().filter(|s| s.name == "tune.sweep").count();
    assert_eq!(sweeps, 2, "both traced sweeps open a tune.sweep span");
    let waves: Vec<_> = spans.iter().filter(|s| s.name == "tune.wave").collect();
    assert!(!waves.is_empty(), "the uncached sweep must trace its waves");
    // Wave spans carry the wave number and nest under the sweep.
    assert_eq!(waves[0].arg, Some(0));
    assert!(waves.iter().all(|w| w.depth > 0));
    // Every evaluated candidate's latency landed in the histogram.
    assert!(dpcons_obs::histogram("tune.candidate_us").count() >= uncached.evaluated as u64);

    // 3. The export of those spans is a balanced, well-formed Chrome trace.
    let json = dpcons_obs::chrome_trace_json(&spans);
    let stats = dpcons_obs::validate_chrome_trace(&json).expect("trace must validate");
    assert_eq!(stats.span_count, spans.len());
    assert!(stats.names.contains(&"tune.wave".to_string()));

    let _ = std::fs::remove_dir_all(&dir);
}
