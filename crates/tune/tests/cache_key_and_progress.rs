//! Pins the two contracts a serving front end depends on:
//!
//! 1. `cache_key_for` / `fleet_cache_key_for` are the *exact* normalizations
//!    the sweeps use internally — an out-of-process dedup table keyed through
//!    them can never disagree with the disk cache.
//! 2. The `WaveHook` progress callback reports every evaluated wave, in
//!    order, and its per-wave counts sum to exactly the evaluated candidates.

use std::sync::Mutex;

use dpcons_apps::{datasets, Profile, RunConfig, Sssp};
use dpcons_sim::GpuConfig;
use dpcons_tune::{
    cache_key_for, fingerprint, fleet_cache_key_for, fleet_sweep_with_progress, tune_with_progress,
    Budget, FleetOptions, TuneOptions, WaveHook, WaveProgress,
};

fn app() -> Sssp {
    Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0)
}

fn space() -> dpcons_core::KnobSpace {
    dpcons_core::KnobSpace {
        granularities: dpcons_core::Granularity::ALL.to_vec(),
        buffers: vec![dpcons_core::BufferKind::Custom, dpcons_core::BufferKind::Halloc],
        per_buffer_sizes: vec![None],
        configs: vec![None, Some((13, 64))],
    }
}

#[test]
fn tune_report_key_matches_public_cache_key_for() {
    let app = app();
    let opts = TuneOptions {
        base: RunConfig::default(),
        space: space(),
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    };
    let report = tune_with_progress(&app, &opts, &WaveHook::none()).unwrap();
    let fp = fingerprint(&app);
    assert_eq!(report.fingerprint, fp);
    assert_eq!(
        report.key,
        cache_key_for("SSSP", fp, &opts.base, &opts.space, &opts.budget, false),
        "public key normalization diverged from the sweep's internal key"
    );
}

#[test]
fn fleet_report_key_matches_public_fleet_cache_key_for() {
    let app = app();
    let fleet = vec![GpuConfig::k20c(), GpuConfig::k40()];
    let opts = FleetOptions {
        base: RunConfig::default(),
        space: space(),
        budget: Budget { max_evals: Some(8), ..Budget::default() },
        fleet: fleet.clone(),
        cache: None,
    };
    let report = fleet_sweep_with_progress(&app, &opts, &WaveHook::none()).unwrap();
    let fp = fingerprint(&app);
    // The capture device is always fleet[0]; `base.gpu` must not matter.
    let mut skewed = opts.base.clone();
    skewed.gpu = GpuConfig::tk1();
    let key = fleet_cache_key_for("SSSP", fp, &skewed, &opts.space, &opts.budget, &fleet);
    assert_eq!(report.key, key, "fleet key must be insensitive to base.gpu");
}

#[test]
fn cache_key_is_sensitive_to_every_request_dimension() {
    let base = RunConfig::default();
    let space = space();
    let budget = Budget::default();
    let k0 = cache_key_for("SSSP", 7, &base, &space, &budget, false);

    assert_ne!(k0, cache_key_for("SpMV", 7, &base, &space, &budget, false), "app");
    assert_ne!(k0, cache_key_for("SSSP", 8, &base, &space, &budget, false), "fingerprint");
    assert_ne!(k0, cache_key_for("SSSP", 7, &base, &space, &budget, true), "with_baselines");

    let mut other_dev = base.clone();
    other_dev.gpu = GpuConfig::tk1();
    assert_ne!(k0, cache_key_for("SSSP", 7, &other_dev, &space, &budget, false), "device");

    let mut other_thresh = base.clone();
    other_thresh.threshold += 1;
    assert_ne!(k0, cache_key_for("SSSP", 7, &other_thresh, &space, &budget, false), "threshold");

    let mut narrow = space.clone();
    narrow.buffers.pop();
    assert_ne!(k0, cache_key_for("SSSP", 7, &base, &narrow, &budget, false), "space");

    let tight = Budget { max_evals: Some(3), ..budget };
    assert_ne!(k0, cache_key_for("SSSP", 7, &base, &space, &tight, false), "budget");

    // And the normalization is deterministic.
    assert_eq!(k0, cache_key_for("SSSP", 7, &base, &space, &budget, false));
}

#[test]
fn fleet_key_is_sensitive_to_fleet_composition_and_order() {
    let base = RunConfig::default();
    let space = space();
    let budget = Budget::default();
    let ab = vec![GpuConfig::k20c(), GpuConfig::k40()];
    let ba = vec![GpuConfig::k40(), GpuConfig::k20c()];
    let abc = vec![GpuConfig::k20c(), GpuConfig::k40(), GpuConfig::titan()];
    let kab = fleet_cache_key_for("SSSP", 7, &base, &space, &budget, &ab);
    assert_ne!(kab, fleet_cache_key_for("SSSP", 7, &base, &space, &budget, &ba), "order");
    assert_ne!(kab, fleet_cache_key_for("SSSP", 7, &base, &space, &budget, &abc), "composition");
    assert_eq!(kab, fleet_cache_key_for("SSSP", 7, &base, &space, &budget, &ab));
}

/// Collect every `WaveProgress` a sweep reports, in arrival order.
fn collecting_hook() -> (WaveHook, std::sync::Arc<Mutex<Vec<WaveProgress>>>) {
    let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    let hook = WaveHook::new(move |p| sink.lock().unwrap().push(p));
    (hook, seen)
}

fn check_progress(waves: &[WaveProgress], evaluated_total: usize) {
    assert!(!waves.is_empty(), "an uncached sweep must report at least one wave");
    for (i, w) in waves.iter().enumerate() {
        assert_eq!(w.wave, i as u64, "wave indices must arrive 0,1,2,... in order");
        assert!(w.evaluated > 0, "every reported wave evaluated someone");
    }
    let sum: usize = waves.iter().map(|w| w.evaluated).sum();
    assert_eq!(sum, evaluated_total, "per-wave counts must sum to the evaluated candidate count");
    assert_eq!(waves.last().unwrap().evaluated_total, sum, "running total tracks the sum");
    assert!(waves.iter().any(|w| w.improved), "some wave found an incumbent");
}

#[test]
fn tune_wave_progress_arrives_in_order_and_sums_to_candidates() {
    let app = app();
    let opts = TuneOptions {
        base: RunConfig::default(),
        space: space(),
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    };
    let (hook, seen) = collecting_hook();
    let report = tune_with_progress(&app, &opts, &hook).unwrap();
    let waves = seen.lock().unwrap();
    // Nothing was skipped under the default (unbounded) budget, so every
    // non-pruned candidate was evaluated and reported through the hook.
    assert_eq!(report.skipped, 0);
    check_progress(&waves, report.evaluated + report.failed + report.panicked + report.timed_out);
    let planned = report.candidates.len() - report.pruned;
    assert!(waves.iter().all(|w| w.planned == planned), "planned is the post-pruning count");
}

#[test]
fn fleet_wave_progress_arrives_in_order_and_sums_to_candidates() {
    let app = app();
    let opts = FleetOptions {
        base: RunConfig::default(),
        space: space(),
        budget: Budget::default(),
        fleet: vec![GpuConfig::k20c(), GpuConfig::k40()],
        cache: None,
    };
    let (hook, seen) = collecting_hook();
    let report = fleet_sweep_with_progress(&app, &opts, &hook).unwrap();
    let waves = seen.lock().unwrap();
    check_progress(&waves, report.functional_runs as usize);
}
