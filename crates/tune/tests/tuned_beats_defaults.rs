//! Acceptance: for each of the seven apps, the tuner's chosen configuration
//! achieves simulated cycles <= the app's seed hand-written directive (every
//! granularity's default), and the tuned run still matches the CPU oracle.

use dpcons_apps::{all_benchmarks, Profile, RunConfig, Variant};
use dpcons_core::{BufferKind, Granularity, KnobSpace};
use dpcons_tune::{candidate_config, default_knobs, tune, Budget, TuneOptions};

#[test]
fn tuner_never_loses_to_the_hand_written_directive() {
    let base = RunConfig::default();
    // A lean space: the three hand-written defaults plus a few alternative
    // kernel configurations. The defaults are always part of the space, so
    // the winner is <= them by construction; this test pins that end to end.
    let space = KnobSpace {
        granularities: Granularity::ALL.to_vec(),
        buffers: vec![BufferKind::Custom],
        per_buffer_sizes: vec![None],
        configs: vec![None, Some((13, 64)), Some((52, 256))],
    };
    let opts = TuneOptions {
        base: base.clone(),
        space,
        budget: Budget::default(),
        with_baselines: false,
        cache: None,
    };
    for app in all_benchmarks(Profile::Test) {
        let report = tune(app.as_ref(), &opts)
            .unwrap_or_else(|e| panic!("{}: tuning failed: {e}", app.name()));
        let best =
            report.best_cycles().unwrap_or_else(|| panic!("{}: no feasible candidate", app.name()));
        let model = app.tune_model().expect("all seven apps are tunable");
        for g in Granularity::ALL {
            let default = report.cycles_for(&default_knobs(&model, g)).unwrap_or_else(|| {
                panic!("{}: {}-level default was not evaluated", app.name(), g.label())
            });
            assert!(
                best <= default,
                "{}: tuned {best} cycles worse than the hand-written {}-level directive ({default})",
                app.name(),
                g.label()
            );
        }
        // The tuned variant still matches the oracle end to end.
        let knobs = report.best_knobs().unwrap();
        let cfg = candidate_config(&base, &knobs);
        let out = app.run(Variant::ConsolidatedTuned, &cfg).unwrap();
        assert_eq!(out.output, app.reference(), "{}: tuned output diverged", app.name());
    }
}
