//! Proof that fleet re-timing adds **no functional work**: pricing every
//! candidate on N devices costs exactly the same number of functional kernel
//! executions as pricing it on one.
//!
//! This is deliberately the only test in this integration-test binary —
//! `dpcons_sim::functional_execs_total` is a process-wide counter, and a
//! lone test owns its whole process, so the deltas below observe nothing but
//! this sweep's work.

use dpcons_apps::{datasets, Profile, RunConfig, Sssp};
use dpcons_sim::{functional_execs_total, GpuConfig};
use dpcons_tune::{fleet_sweep, Budget, FleetOptions, FleetStatus};

#[test]
fn fleet_retiming_adds_no_functional_kernel_executions() {
    let app = Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0);
    let space = dpcons_core::KnobSpace {
        granularities: dpcons_core::Granularity::ALL.to_vec(),
        buffers: vec![dpcons_core::BufferKind::Custom, dpcons_core::BufferKind::Halloc],
        per_buffer_sizes: vec![None],
        configs: vec![None, Some((13, 64))],
    };
    let mk = |fleet: Vec<GpuConfig>| FleetOptions {
        base: RunConfig::default(),
        space: space.clone(),
        budget: Budget::default(),
        fleet,
        cache: None, // a cache hit would hide the work being measured
    };

    // Sweep on a single device...
    let before = functional_execs_total();
    let solo = fleet_sweep(&app, &mk(vec![GpuConfig::k20c()])).unwrap();
    let solo_execs = functional_execs_total() - before;
    assert!(solo_execs > 0, "the sweep must actually execute kernels");

    // ...and the identical sweep re-timed on four devices.
    let fleet = vec![GpuConfig::k20c(), GpuConfig::k40(), GpuConfig::titan(), GpuConfig::tk1()];
    let before = functional_execs_total();
    let wide = fleet_sweep(&app, &mk(fleet)).unwrap();
    let wide_execs = functional_execs_total() - before;

    assert_eq!(
        wide_execs, solo_execs,
        "re-timing on 3 extra devices must not add a single functional kernel execution"
    );

    // The matrix really is candidate x device, priced from one capture each.
    assert_eq!(wide.devices.len(), 4);
    assert_eq!(wide.functional_runs, solo.functional_runs);
    let retimed =
        wide.candidates.iter().filter(|c| matches!(c.status, FleetStatus::Retimed(_))).count();
    assert!(retimed > 0);
    assert_eq!(wide.retimings, retimed as u64 * 4, "every retimed candidate covers every device");
    assert_eq!(solo.retimings, retimed as u64, "same candidates, one device");
    for (d, w) in wide.winners.iter().enumerate() {
        assert!(w.is_some(), "device {d} ({}) has no winner", wide.devices[d]);
    }
    // Winners on the shared capture device agree between the two sweeps.
    assert_eq!(wide.winner_knobs(0), solo.winner_knobs(0));
    assert_eq!(wide.winner_cycles(0), solo.winner_cycles(0));
}
