//! Device-fleet what-if sweep, end to end.
//!
//! ```sh
//! cargo run --release --example fleet
//! ```
//!
//! The fleet sweep exploits the simulator's two-phase engine: a tuner
//! candidate's *functional* execution is device-independent, so each
//! surviving candidate runs **once** (on the capture device) and its
//! captured launch DAGs are re-priced on every other device by timing-only
//! replay. One functional run buys a whole row of the knobs × device
//! matrix. The walkthrough sweeps SSSP across four Kepler-class profiles,
//! prints the matrix and the per-device winners, then runs the Test→Bench
//! transfer check: how much do knobs tuned on the small dataset regret on
//! the large one, versus tuning there directly?

use dpcons::apps::{datasets, Profile, RunConfig, Sssp};
use dpcons::compiler::KnobSpace;
use dpcons::sim::parse_fleet;
use dpcons::tune::{fleet_sweep, transfer_check, Budget, FleetOptions, TuneOptions};

fn main() {
    // -----------------------------------------------------------------
    // 1. Assemble a fleet from the named device registry.
    // -----------------------------------------------------------------
    let fleet = parse_fleet("k20c,k40,titan,tk1").expect("registry names parse");
    let names: Vec<&str> = fleet.iter().map(|g| g.name.as_str()).collect();
    println!("# Fleet what-if sweep on {} devices: {}\n", fleet.len(), names.join(", "));

    // -----------------------------------------------------------------
    // 2. Capture once per candidate, re-time everywhere.
    // -----------------------------------------------------------------
    let app = Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0);
    let opts = FleetOptions {
        base: RunConfig::default(),
        space: KnobSpace::quick(fleet[0].num_sms),
        budget: Budget { max_evals: Some(8), patience: Some(2), ..Budget::default() },
        fleet,
        cache: None,
    };
    let report = fleet_sweep(&app, &opts).expect("SSSP is tunable");
    let retimed = report.retimed().count();
    println!(
        "{}: {} functional runs -> {} timing datapoints ({} candidates x {} devices)\n",
        report.app,
        report.functional_runs,
        report.retimings,
        retimed,
        report.devices.len(),
    );
    assert_eq!(report.retimings, retimed as u64 * report.devices.len() as u64);

    // The matrix: one row per retimed candidate, one cycles column per device.
    println!("{:<28} {}", "knobs", report.devices.join("  "));
    for (c, cells) in report.retimed() {
        let row: Vec<String> = report
            .devices
            .iter()
            .zip(cells)
            .map(|(d, cell)| format!("{:>w$}", cell.cycles, w = d.len()))
            .collect();
        println!("{:<28} {}", c.knobs.label(), row.join("  "));
    }

    // Per-device winners: bigger devices may prefer different knobs.
    println!("\nper-device winners:");
    for (d, name) in report.devices.iter().enumerate() {
        println!(
            "  {:<12} {}  ({} cycles)",
            name,
            report.winner_knobs(d).expect("winner exists").label(),
            report.winner_cycles(d).expect("winner exists"),
        );
    }

    // -----------------------------------------------------------------
    // 3. Transfer tuning: Test-scale knobs re-scored at Bench scale.
    // -----------------------------------------------------------------
    let bench_app = Sssp::new(datasets::citeseer(Profile::Bench).with_weights(15, 0xD15), 0);
    let topts = TuneOptions {
        base: RunConfig::default(),
        space: KnobSpace::quick(RunConfig::default().gpu.num_sms),
        budget: Budget { max_evals: Some(6), patience: Some(1), ..Budget::default() },
        with_baselines: false,
        cache: None,
    };
    let t = transfer_check(&app, &bench_app, &topts).expect("both profiles are tunable");
    println!("\ntransfer check (Test -> Bench, on {}):", t.device);
    println!("  test-tuned knobs   {}", t.test_knobs.label());
    match (t.transferred_cycles, t.regret()) {
        (Some(c), Some(r)) => {
            println!("  transferred        {c} cycles");
            println!(
                "  bench oracle       {} cycles ({})",
                t.oracle_cycles,
                t.oracle_knobs.label()
            );
            println!("  regret             {:.1}%", 100.0 * r);
        }
        _ => println!("  transferred        infeasible at Bench scale"),
    }
}
