//! Tuning-as-a-service walkthrough: daemon, client, dedup, metrics.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```
//!
//! Starts an in-process `dpcons-serve` daemon on an ephemeral port, then
//! drives it the way a fleet-management script would:
//!
//! 1. submit one single-device tune and poll it to completion,
//! 2. submit the *same* fleet sweep twice concurrently — the second request
//!    dedups onto the first job, so two clients pay for one sweep,
//! 3. read `/metrics` to confirm the serve counters saw all of it,
//! 4. drain the server and exit cleanly.
//!
//! Everything is std-only: the server is a hand-rolled HTTP/1.1 loop over
//! `std::net::TcpListener`, the wire format is the crate's own strict JSON.

use std::time::Duration;

use dpcons::serve::pool::CacheMode;
use dpcons::serve::{serve, Client, ServerConfig};

fn main() {
    // -----------------------------------------------------------------
    // 1. Boot the daemon in-process on an ephemeral port.
    // -----------------------------------------------------------------
    let handle =
        serve(ServerConfig { workers: 2, cache: CacheMode::Memory, ..ServerConfig::default() })
            .expect("server binds an ephemeral port");
    let client = Client::new(handle.addr().to_string());
    println!("# dpcons-serve listening on {}\n", handle.addr());

    let health = client.healthz().expect("healthz answers");
    println!("healthz: {}", health.render());

    // -----------------------------------------------------------------
    // 2. One single-device tune, polled to completion.
    // -----------------------------------------------------------------
    let sub = client
        .submit("tune", &Client::tune_body("SSSP", "k20c", 8))
        .expect("tune submission is admitted");
    println!("\ntune job {} (key {}) accepted, status {}", sub.job, sub.key, sub.status);
    let view = client.wait(sub.job, Duration::from_secs(120)).expect("tune job completes");
    let result = view.get("result").expect("done job carries a result");
    println!(
        "tune done: winner {} ({} cycles), {} candidates evaluated over {} waves",
        result.get("winner").and_then(|w| w.get("knobs")).and_then(|k| k.as_str()).unwrap_or("?"),
        result
            .get("winner")
            .and_then(|w| w.get("cycles"))
            .and_then(|c| c.as_num())
            .unwrap_or(f64::NAN),
        result.get("evaluated").and_then(|v| v.as_num()).unwrap_or(f64::NAN),
        view.get("waves").and_then(|w| w.as_arr()).map_or(0, |w| w.len()),
    );

    // -----------------------------------------------------------------
    // 3. The same fleet sweep from two clients: one sweep, two answers.
    // -----------------------------------------------------------------
    let body = Client::fleet_body("SSSP", &["k20c", "k40", "titan"], 8);
    let (first, second) = std::thread::scope(|s| {
        let a = s.spawn(|| client.submit("fleet", &body).expect("first fleet submission"));
        let b = s.spawn(|| client.submit("fleet", &body).expect("second fleet submission"));
        (a.join().expect("first client thread"), b.join().expect("second client thread"))
    });
    assert_eq!(first.job, second.job, "identical requests share one job");
    assert_eq!(first.key, second.key, "identical requests normalize to one key");
    assert!(
        first.deduped != second.deduped,
        "exactly one of the two submissions enqueues the sweep"
    );
    println!(
        "\nfleet job {}: two submissions, deduped = ({}, {}) — one sweep pays for both",
        first.job, first.deduped, second.deduped
    );
    let view = client.wait(first.job, Duration::from_secs(120)).expect("fleet job completes");
    let result = view.get("result").expect("done fleet job carries a result");
    println!(
        "fleet done: {} functional runs -> {} retimings; per-device winners:",
        result.get("functional_runs").and_then(|v| v.as_num()).unwrap_or(f64::NAN),
        result.get("retimings").and_then(|v| v.as_num()).unwrap_or(f64::NAN),
    );
    let winners = result.get("winners").and_then(|w| w.as_arr()).expect("winners array");
    for w in winners {
        println!(
            "  {:<8} {} ({} cycles)",
            w.get("device").and_then(|d| d.as_str()).unwrap_or("?"),
            w.get("knobs").and_then(|k| k.as_str()).unwrap_or("infeasible"),
            w.get("cycles").and_then(|c| c.as_num()).unwrap_or(f64::NAN),
        );
    }

    // -----------------------------------------------------------------
    // 4. The serve counters saw the whole session.
    // -----------------------------------------------------------------
    let metrics = client.metrics().expect("/metrics renders");
    println!("\n/metrics (serve rows):");
    for line in metrics.lines().filter(|l| l.contains("serve.")) {
        println!("  {line}");
    }
    for needle in ["serve.requests", "serve.jobs_done", "serve.deduped"] {
        assert!(metrics.contains(needle), "/metrics must report {needle}");
    }

    // -----------------------------------------------------------------
    // 5. Drain: finish queued work, stop the pool, exit clean.
    // -----------------------------------------------------------------
    client.shutdown_server().expect("drain request accepted");
    handle.shutdown().expect("clean drain");
    println!("\nserver drained cleanly");
}
