//! Autotune the `#pragma dp` directive for a benchmark, end to end.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```
//!
//! The tuner enumerates the directive knob space (granularity × buffer
//! allocator × perBufferSize × kernel configuration), prunes
//! statically-infeasible points with the compiler's own analyses, evaluates
//! the survivors in parallel on the simulator, and returns a ranked report.
//! Running the example twice demonstrates the deterministic results cache:
//! the second sweep is a hit and reproduces the identical report.

use dpcons::apps::{datasets, Benchmark, Profile, RunConfig, Sssp};
use dpcons::compiler::KnobSpace;
use dpcons::tune::{
    default_knobs, materialize_directive, run_tuned, tune, Budget, Cache, Status, TuneOptions,
};

fn main() {
    let app = Sssp::new(datasets::citeseer(Profile::Test).with_weights(15, 0xD15), 0);
    let cfg = RunConfig::default();
    let opts = TuneOptions {
        base: cfg.clone(),
        space: KnobSpace::quick(cfg.gpu.num_sms),
        budget: Budget { max_evals: Some(32), patience: Some(3), ..Budget::default() },
        with_baselines: true,
        cache: Some(Cache::in_temp_dir()),
    };

    // -----------------------------------------------------------------
    // 1. Search the knob space and launch under the winner.
    // -----------------------------------------------------------------
    let (report, tuned_run) = run_tuned(&app, &opts).expect("SSSP is tunable");
    println!(
        "# Autotuning {} on {} — {} candidates ({} evaluated, {} pruned, {} skipped, {} collapsed)\n",
        report.app,
        report.gpu,
        report.candidates.len(),
        report.evaluated,
        report.pruned,
        report.skipped,
        report.collapsed,
    );

    // -----------------------------------------------------------------
    // 2. The ranked picture: baselines and the best evaluated candidates.
    // -----------------------------------------------------------------
    for (label, cycles) in &report.baselines {
        println!("baseline {label:<10} {cycles:>12} cycles");
    }
    let mut ranked: Vec<_> = report
        .candidates
        .iter()
        .filter_map(|c| match &c.status {
            Status::Evaluated(m) if m.output_ok => Some((m.cycles, c.knobs)),
            _ => None,
        })
        .collect();
    ranked.sort_by_key(|(cycles, knobs)| (*cycles, knobs.label()));
    println!("\ntop candidates:");
    for (cycles, knobs) in ranked.iter().take(5) {
        println!("  {cycles:>12} cycles  {}", knobs.label());
    }

    // -----------------------------------------------------------------
    // 3. The winning directive as pragma text, vs the hand-written default.
    // -----------------------------------------------------------------
    let model = app.tune_model().expect("SSSP exposes a tune model");
    let best = report.best_knobs().expect("a winner exists");
    println!("\nwinning pragma:  {}", materialize_directive(&model, &best).to_pragma());
    let best_cycles = report.best_cycles().expect("winner has metrics");
    for g in dpcons::compiler::Granularity::ALL {
        if let Some(d) = report.cycles_for(&default_knobs(&model, g)) {
            println!(
                "vs {:<5} default: {:>12} cycles ({:.2}x)",
                g.label(),
                d,
                d as f64 / best_cycles as f64
            );
        }
    }
    println!(
        "\ntuned end-to-end run: {} cycles over {} host iterations",
        tuned_run.report.total_cycles, tuned_run.host_iterations
    );

    // -----------------------------------------------------------------
    // 4. Repeat the sweep: the deterministic cache makes it O(1).
    // -----------------------------------------------------------------
    let again = tune(&app, &opts).expect("same sweep");
    assert_eq!(again, report, "cache reproduces the identical report");
    println!(
        "\nsecond sweep: cache {} — identical report",
        if again.from_cache { "hit" } else { "miss" }
    );
}
