//! A tour of the `#pragma dp` directive (paper Table I) and the generated
//! code at each consolidation granularity.
//!
//! ```sh
//! cargo run --release --example pragma_tour
//! ```

use dpcons::compiler::{analyze, consolidate, ConfigPolicy, Directive, Granularity};
use dpcons::ir::dsl::*;
use dpcons::ir::{kernel_to_string, Module};
use dpcons::sim::GpuConfig;

fn sample_module() -> Module {
    let mut m = Module::new();
    m.add(KernelBuilder::new("process_node").array("adj").array("result").scalar("node").body(
        vec![for_step(
            "j",
            tid(),
            load(v("adj"), v("node")),
            ntid(),
            vec![atomic_add(None, v("result"), v("node"), i(1))],
        )],
    ));
    m.add(KernelBuilder::new("traverse").array("adj").array("result").scalar("n").body(vec![
        let_("node", gtid()),
        when(
            lt(v("node"), v("n")),
            vec![when(
                gt(load(v("adj"), v("node")), i(32)),
                vec![launch("process_node", i(1), i(128), vec![v("adj"), v("result"), v("node")])],
            )],
        ),
    ]));
    m
}

fn main() {
    let gpu = GpuConfig::k20c();
    let m = sample_module();

    // Parse the pragma exactly as it would appear above the kernel.
    for pragma in [
        "#pragma dp consldt(warp) buffer(custom) work(node)",
        "#pragma dp consldt(block) buffer(halloc, perBufferSize: 256) work(node)",
        "#pragma dp consldt(grid) buffer(custom, totalSize: 1048576) work(node) threads(256) blocks(26)",
    ] {
        let d = Directive::parse(pragma).unwrap();
        println!("=== {pragma}");
        println!(
            "granularity: {:?}, buffer: {:?}, work vars: {:?}",
            d.granularity, d.buffer, d.work
        );

        let a = analyze(&m, "traverse", &d).unwrap();
        println!(
            "template analysis: child `{}` is {}, buffered args {:?}, pass-through {:?}",
            a.launch.target,
            a.launch.class.label(),
            a.launch.buffered,
            a.launch.passthrough
        );

        let cons = consolidate(&m, "traverse", &d, &gpu, None).unwrap();
        println!(
            "policy {} resolved to {:?}\n",
            cons.info.child_config.label(),
            cons.info.resolved_config
        );
        println!("{}", kernel_to_string(cons.module.get("traverse").unwrap()));
        println!("{}", kernel_to_string(cons.module.get("process_node__cons").unwrap()));
    }

    // The occupancy calculator behind KC_1/KC_16/KC_32.
    println!("=== KC configurations for the consolidated child on the K20c ===");
    for x in [1u32, 16, 32] {
        let (b, t) = ConfigPolicy::Kc(x)
            .resolve(&gpu, dpcons::compiler::KernelResources::default())
            .unwrap();
        println!("KC_{x:<2} -> <<<{b}, {t}>>>");
    }
    let _ = Granularity::ALL;
}
