//! Parallel-recursion scenario: Tree Descendants (the paper's Fig. 1c).
//!
//! The recursive kernel is consolidated by applying the child and parent
//! transformations sequentially to the single kernel; at grid level the
//! result launches exactly one consolidated kernel per tree level.
//!
//! ```sh
//! cargo run --release --example recursive_tree
//! ```

use dpcons::apps::{Benchmark, RunConfig, TreeDescendants, Variant};
use dpcons::compiler::{consolidate, Granularity};
use dpcons::ir::module_to_string;
use dpcons::sim::GpuConfig;
use dpcons::workloads::{generate_tree, TreeParams};

fn main() {
    // Fanout above the warp size (as in the paper's tree datasets), at a
    // depth where the hand-written warp-level `perBufferSize` still bounds
    // every level a single warp chain absorbs — one level deeper and the
    // warp-level variant overflows its buffers and corrupts the count
    // (`dpcons-tune` rejects such candidates by checking the oracle).
    let tree = generate_tree(TreeParams {
        depth: 3,
        min_children: 33,
        max_children: 48,
        fill_prob: 0.6,
        seed: 11,
    });
    println!(
        "tree: {} nodes, height {}, {} descendants of the root\n",
        tree.n,
        tree.height(),
        tree.descendants()
    );

    // Show the consolidated recursive kernel the compiler generates.
    let dir = TreeDescendants::directive(Granularity::Grid);
    let cons = consolidate(&TreeDescendants::module_dp(), "td_rec", &dir, &GpuConfig::k20c(), None)
        .unwrap();
    println!("=== grid-level consolidated recursive kernel ===\n");
    println!("{}", module_to_string(&cons.module));

    let app = TreeDescendants::new(tree);
    let cfg = RunConfig::default();
    println!(
        "{:<12} {:>14} {:>10} {:>10} {:>9}",
        "variant", "cycles", "launches", "max-depth", "warp-eff"
    );
    for variant in Variant::ALL {
        let out = app.run(variant, &cfg).unwrap();
        assert_eq!(out.output, app.reference(), "{} broke the count", variant.label());
        println!(
            "{:<12} {:>14} {:>10} {:>10} {:>8.1}%",
            variant.label(),
            out.report.total_cycles,
            out.report.device_launches,
            out.report.max_depth,
            out.report.warp_exec_efficiency * 100.0,
        );
    }
    println!("\ngrid-level recursion launches one consolidated kernel per tree level");
}
