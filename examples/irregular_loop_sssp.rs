//! Irregular-loop scenario: Single-Source Shortest Path on a power-law graph
//! (the paper's Fig. 1b motivating example), across all five variants.
//!
//! ```sh
//! cargo run --release --example irregular_loop_sssp
//! ```

use dpcons::apps::{Benchmark, RunConfig, Sssp, Variant};
use dpcons::workloads::gen;

fn main() {
    // CiteSeer-like shape: heavy-tailed outdegrees make flat kernels
    // divergent and per-thread nested launches numerous.
    let graph = gen::citeseer_like(4000, 16.0, 600, 7).with_weights(15, 3);
    let (dmin, dmax, dmean) = graph.degree_stats();
    println!(
        "graph: {} nodes, {} edges, outdegree {dmin}..{dmax} (mean {dmean:.1})\n",
        graph.n,
        graph.num_edges()
    );

    let app = Sssp::new(graph, 0);
    let cfg = RunConfig::default();

    println!(
        "{:<12} {:>14} {:>10} {:>10} {:>8} {:>9}",
        "variant", "cycles", "launches", "warp-eff", "occup", "host-iters"
    );
    let mut basic_cycles = 0u64;
    for variant in Variant::ALL {
        let report =
            app.verify(variant, &cfg).unwrap_or_else(|e| panic!("{} failed: {e}", variant.label()));
        if variant == Variant::BasicDp {
            basic_cycles = report.total_cycles;
        }
        let out = app.run(variant, &cfg).unwrap();
        println!(
            "{:<12} {:>14} {:>10} {:>9.1}% {:>7.1}% {:>9}   ({:.1}x over basic-dp)",
            variant.label(),
            report.total_cycles,
            report.device_launches,
            report.warp_exec_efficiency * 100.0,
            report.achieved_occupancy * 100.0,
            out.host_iterations,
            basic_cycles as f64 / report.total_cycles as f64,
        );
    }
    println!("\nevery variant verified bit-identical to the CPU oracle");
}
