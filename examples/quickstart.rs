//! Quickstart: annotate a basic-dp kernel, consolidate it, run both on the
//! simulated GPU, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dpcons::compiler::{consolidate, prepare_launch, reset_launch, Directive};
use dpcons::ir::dsl::*;
use dpcons::ir::{install, module_to_string, Module};
use dpcons::sim::{AllocKind, Engine, GpuConfig, LaunchSpec};

fn main() {
    // -----------------------------------------------------------------
    // 1. Write a basic-dp program: each thread owns an item; heavy items
    //    spawn a child kernel (the paper's Fig. 1 template).
    // -----------------------------------------------------------------
    let mut module = Module::new();
    module.add(KernelBuilder::new("child").array("sizes").array("out").scalar("item").body(vec![
        for_step(
            "j",
            tid(),
            load(v("sizes"), v("item")),
            ntid(),
            vec![atomic_add(None, v("out"), v("item"), i(1))],
        ),
    ]));
    module.add(
        KernelBuilder::new("parent").array("sizes").array("out").scalar("n").scalar("thr").body(
            vec![
                let_("id", gtid()),
                when(
                    lt(v("id"), v("n")),
                    vec![
                        let_("sz", load(v("sizes"), v("id"))),
                        if_(
                            gt(v("sz"), v("thr")),
                            vec![launch(
                                "child",
                                i(1),
                                i(128),
                                vec![v("sizes"), v("out"), v("id")],
                            )],
                            vec![for_(
                                "j",
                                i(0),
                                v("sz"),
                                vec![atomic_add(None, v("out"), v("id"), i(1))],
                            )],
                        ),
                    ],
                ),
            ],
        ),
    );

    // -----------------------------------------------------------------
    // 2. Annotate with `#pragma dp` and run the consolidation compiler.
    // -----------------------------------------------------------------
    let directive = Directive::parse("#pragma dp consldt(block) buffer(custom) work(id)").unwrap();
    let gpu = GpuConfig::k20c();
    let cons = consolidate(&module, "parent", &directive, &gpu, None).unwrap();
    println!("=== generated CUDA-like source ===\n");
    println!("{}", module_to_string(&cons.module));

    // -----------------------------------------------------------------
    // 3. Run both variants on the simulated K20c and compare.
    // -----------------------------------------------------------------
    let n = 4096usize;
    let sizes: Vec<i64> = (0..n).map(|i| if i % 5 == 0 { 300 } else { 3 }).collect();

    let run = |m: &Module, consolidated: Option<&dpcons::compiler::Consolidated>| {
        let mut e = Engine::new(gpu.clone(), AllocKind::PreAlloc, 1 << 22);
        let sizes_h = e.mem.alloc_array_init("sizes", sizes.clone());
        let out_h = e.mem.alloc_array("out", n);
        let ids = install(&mut e, m).unwrap();
        let args = vec![sizes_h as i64, out_h as i64, n as i64, 32];
        let config = ((n as u32).div_ceil(128), 128);
        let report = match consolidated {
            None => e.launch(LaunchSpec::new(ids["parent"], config.0, config.1, args)).unwrap(),
            Some(c) => {
                let mut prep =
                    prepare_launch(&mut e, &c.info, &ids, &args, config, 1 << 20).unwrap();
                reset_launch(&mut e, &mut prep).unwrap();
                e.launch(prep.spec.clone()).unwrap()
            }
        };
        (e.mem.slice(out_h).unwrap().to_vec(), report)
    };

    let (basic_out, basic) = run(&module, None);
    let (cons_out, consd) = run(&cons.module, Some(&cons));
    assert_eq!(basic_out, cons_out, "consolidation must preserve results");

    println!("=== profile ===");
    println!(
        "basic-dp:     {:>12} cycles, {:>6} child launches, warp efficiency {:>5.1}%",
        basic.total_cycles,
        basic.device_launches,
        basic.warp_exec_efficiency * 100.0
    );
    println!(
        "consolidated: {:>12} cycles, {:>6} child launches, warp efficiency {:>5.1}%",
        consd.total_cycles,
        consd.device_launches,
        consd.warp_exec_efficiency * 100.0
    );
    println!(
        "speedup: {:.1}x  (launches reduced to {:.2}%)",
        basic.total_cycles as f64 / consd.total_cycles as f64,
        100.0 * consd.device_launches as f64 / basic.device_launches.max(1) as f64
    );
}
