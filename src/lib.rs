//! # dpcons — compiler-assisted workload consolidation for GPU dynamic parallelism
//!
//! Umbrella crate for the reproduction of Wu, Li & Becchi, *"Compiler-Assisted
//! Workload Consolidation For Efficient Dynamic Parallelism on GPU"*
//! (IPDPS 2016). It re-exports the workspace crates:
//!
//! * [`sim`] — deterministic SIMT GPU simulator with a dynamic-parallelism
//!   runtime model (the hardware substrate standing in for the paper's K20c),
//! * [`ir`] — kernel IR, builder, warp-lockstep interpreter, CUDA-flavoured
//!   pretty printer,
//! * [`compiler`] — the paper's contribution: the `#pragma dp` directive and
//!   the warp/block/grid workload-consolidation transformations,
//! * [`workloads`] — graph/tree generators and CPU reference algorithms,
//! * [`apps`] — the seven IPDPS'16 benchmarks and the variant runner,
//! * [`obs`] — host-side observability: metrics registry, span tracing, and
//!   Chrome-trace export for the capture/replay/tune pipeline,
//! * [`serve`] — the tuning-as-a-service daemon: std-only HTTP/JSON server
//!   with request dedup, sharded workers, and streamed wave progress.
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment inventory.

pub use dpcons_apps as apps;
pub use dpcons_core as compiler;
pub use dpcons_ir as ir;
pub use dpcons_obs as obs;
pub use dpcons_serve as serve;
pub use dpcons_sim as sim;
pub use dpcons_tune as tune;
pub use dpcons_workloads as workloads;
